package engine

import (
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/batch"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/obs"
)

// Set writes a single key-value pair.
func (e *Engine) Set(key, value []byte, sync bool) error {
	b := batch.New()
	b.Set(key, value)
	return e.Apply(b, sync)
}

// Delete writes a tombstone for key.
func (e *Engine) Delete(key []byte, sync bool) error {
	b := batch.New()
	b.Delete(key)
	return e.Apply(b, sync)
}

// DeleteRange writes one range tombstone deleting every key in [start,
// end) — O(1) writes regardless of how many keys the range covers. An
// empty range is a no-op.
func (e *Engine) DeleteRange(start, end []byte, sync bool) error {
	b := batch.New()
	b.DeleteRange(start, end)
	return e.Apply(b, sync)
}

func (e *Engine) setBgErr(err error) {
	e.mu.Lock()
	e.setDegradedLocked(err)
	e.mu.Unlock()
}

// makeRoomForWrite implements the write-stall state machine (§5.1's
// level0-slowdown and level0-stop parameters, plus memtable rotation).
// Called with commitMu held.
func (e *Engine) makeRoomForWrite(n int) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	delayed := false
	for {
		switch {
		case e.closed:
			return ErrClosed
		case e.bgErr != nil:
			return &readOnlyError{cause: e.bgErr}
		case !delayed && e.tree.L0Count() >= e.cfg.L0SlowdownTrigger && e.tree.L0Count() < e.cfg.L0StopTrigger:
			// Soft limit: delay this write once by 1ms of deliberate
			// backpressure, ceding CPU and IO to compaction — but wake
			// immediately if compaction brings L0 back under the trigger,
			// at which point the rest of the sleep would throttle nothing.
			e.stats.slowdowns.Add(1)
			clear := e.stallClear
			e.mu.Unlock()
			stall := e.stallID.Add(1)
			e.cfg.Emit(obs.Event{
				Kind: obs.EventWriteStallBegin, Nanos: obs.Monotonic(),
				Level: -1, Unit: stall, Detail: "slowdown",
			})
			start := time.Now()
			timer := time.NewTimer(time.Millisecond)
			select {
			case <-clear:
			case <-timer.C:
			}
			timer.Stop()
			d := time.Since(start)
			e.stats.stallNanos.Add(int64(d))
			e.cfg.Emit(obs.Event{
				Kind: obs.EventWriteStallEnd, Nanos: obs.Monotonic(),
				Level: -1, Unit: stall, Dur: d, Detail: "slowdown",
			})
			e.mu.Lock()
			delayed = true
		case e.mem.ApproxSize()+int64(n) <= int64(e.cfg.MemtableSize):
			return nil
		case e.imm != nil:
			// Previous memtable still flushing.
			e.stats.memWaits.Add(1)
			e.cond.Wait()
		case e.tree.L0Count() >= e.cfg.L0StopTrigger:
			// Hard limit: block until compaction drains level 0.
			e.stats.stops.Add(1)
			stall := e.stallID.Add(1)
			e.cfg.Emit(obs.Event{
				Kind: obs.EventWriteStallBegin, Nanos: obs.Monotonic(),
				Level: -1, Unit: stall, Detail: "stop",
			})
			start := time.Now()
			e.cond.Wait()
			d := time.Since(start)
			e.stats.stallNanos.Add(int64(d))
			e.cfg.Emit(obs.Event{
				Kind: obs.EventWriteStallEnd, Nanos: obs.Monotonic(),
				Level: -1, Unit: stall, Dur: d, Detail: "stop",
			})
		default:
			if err := e.rotateMemtableLocked(); err != nil {
				e.setDegradedLocked(err)
				return err
			}
		}
	}
}

// rotateMemtableLocked freezes the current memtable behind a fresh WAL and
// flushes it in the background. Called with commitMu and mu held (so no
// new writer reservations can arrive); it waits for in-flight appliers to
// drain before freezing, and stamps the flush with the last *allocated*
// sequence number — after the quiesce, every allocated commit is in the
// frozen memtable even if not yet published.
func (e *Engine) rotateMemtableLocked() error {
	if err := e.startNewWAL(); err != nil {
		return err
	}
	e.mem.QuiesceWriters()
	// Bound guard-ingestion lag to one memtable: the sidecar is empty
	// whenever a memtable freezes, so the guards selected from its keys
	// exist before any compaction can consume them. (The ingest worker
	// only needs the tree mutex, which is never held across engine
	// callbacks, so draining under commitMu+mu cannot deadlock.)
	e.drainIngest()
	e.imm = e.mem
	e.mem = memtable.New()
	e.flushing = true
	// Record the flush stamp so Resume can re-run an interrupted flush
	// with the same arguments.
	e.immLogNum = e.walNum
	e.immLastSeq = base.SeqNum(e.logSeq)
	go e.flushWorker(e.imm, e.immLogNum, e.immLastSeq)
	return nil
}

// flushWorker writes one immutable memtable to level 0, retrying transient
// failures before degrading the store.
func (e *Engine) flushWorker(imm *memtable.Memtable, newLogNum base.FileNum, lastSeq base.SeqNum) {
	id := e.flushID.Add(1)
	inputBytes := imm.ApproxSize()
	e.cfg.Emit(obs.Event{
		Kind: obs.EventFlushBegin, Nanos: obs.Monotonic(), Level: 0,
		Unit: id, InputBytes: inputBytes, FileNum: uint64(newLogNum),
	})
	start := time.Now()
	err := e.retryBg("flush", func() error {
		return e.tree.Flush(imm.NewIter(), imm.RangeDels(), newLogNum, lastSeq)
	})
	e.cfg.Emit(obs.Event{
		Kind: obs.EventFlushEnd, Nanos: obs.Monotonic(), Level: 0,
		Unit: id, InputBytes: inputBytes, FileNum: uint64(newLogNum),
		Dur: time.Since(start), Err: err,
	})
	e.mu.Lock()
	if err != nil {
		e.setDegradedLocked(err)
	} else {
		e.imm = nil
		e.stats.flushes.Add(1)
	}
	e.flushing = false
	e.cond.Broadcast()
	e.maybeScheduleCompactionLocked()
	e.mu.Unlock()
	e.cleanup()
}

// Flush forces the current memtable to storage and waits for it.
func (e *Engine) Flush() error {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	// No new commits can be scheduled while commitMu is held (rotation and
	// scheduling both require it, so e.mem is stable here); wait out the
	// in-flight appliers and the guard sidecar so the flushed table and
	// its guards match.
	e.mem.QuiesceWriters()
	e.drainIngest()

	e.mu.Lock()
	defer e.mu.Unlock()
	for e.imm != nil && e.bgErr == nil {
		e.cond.Wait()
	}
	if e.bgErr != nil {
		return &readOnlyError{cause: e.bgErr}
	}
	if e.mem.Empty() {
		return nil
	}
	if err := e.rotateMemtableLocked(); err != nil {
		// A failed rotation may have closed or poisoned the old WAL;
		// degrade like the write path does so no commit trusts it again.
		e.setDegradedLocked(err)
		return err
	}
	for e.imm != nil && e.bgErr == nil {
		e.cond.Wait()
	}
	if e.bgErr != nil {
		return &readOnlyError{cause: e.bgErr}
	}
	return nil
}

// CompactAll flushes and then drives compaction to quiescence on the
// calling goroutine (benchmarks measuring fully compacted stores).
func (e *Engine) CompactAll() error {
	if err := e.Flush(); err != nil {
		return err
	}
	if err := e.tree.CompactAll(); err != nil {
		return err
	}
	e.cleanup()
	return e.WaitIdle()
}
