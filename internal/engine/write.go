package engine

import (
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/batch"
	"pebblesdb/internal/memtable"
)

// Set writes a single key-value pair.
func (e *Engine) Set(key, value []byte, sync bool) error {
	b := batch.New()
	b.Set(key, value)
	return e.Apply(b, sync)
}

// Delete writes a tombstone for key.
func (e *Engine) Delete(key []byte, sync bool) error {
	b := batch.New()
	b.Delete(key)
	return e.Apply(b, sync)
}

// Apply commits a batch atomically: one WAL record, consecutive sequence
// numbers, and memtable application. Concurrent callers serialize on the
// commit mutex (LevelDB's writer queue collapses to this under Go's mutex
// FIFO-ish scheduling).
func (e *Engine) Apply(b *batch.Batch, sync bool) error {
	if b.Empty() {
		return nil
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()

	if err := e.makeRoomForWrite(b.ApproxSize()); err != nil {
		return err
	}

	seq := base.SeqNum(e.seq.Load()) + 1
	b.SetSeqNum(seq)
	repr := b.Repr()
	if err := e.walW.AddRecord(repr); err != nil {
		e.setBgErr(err)
		return err
	}
	e.stats.walBytes.Add(int64(len(repr)))
	if sync || e.cfg.WALSync {
		if err := e.walFile.Sync(); err != nil {
			e.setBgErr(err)
			return err
		}
	}

	err := b.Iterate(func(kind base.Kind, ukey, value []byte, s base.SeqNum) error {
		e.mem.Set(ukey, s, kind, value)
		e.tree.Ingest(ukey)
		return nil
	})
	if err != nil {
		e.setBgErr(err)
		return err
	}
	// Publish visibility only after the memtable holds every entry.
	e.seq.Store(uint64(seq) + uint64(b.Count()) - 1)
	e.stats.writes.Add(int64(b.Count()))
	return nil
}

func (e *Engine) setBgErr(err error) {
	e.mu.Lock()
	if e.bgErr == nil {
		e.bgErr = err
	}
	e.mu.Unlock()
}

// makeRoomForWrite implements the write-stall state machine (§5.1's
// level0-slowdown and level0-stop parameters, plus memtable rotation).
// Called with commitMu held.
func (e *Engine) makeRoomForWrite(n int) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	delayed := false
	for {
		switch {
		case e.closed:
			return ErrClosed
		case e.bgErr != nil:
			return e.bgErr
		case !delayed && e.tree.L0Count() >= e.cfg.L0SlowdownTrigger && e.tree.L0Count() < e.cfg.L0StopTrigger:
			// Soft limit: delay this write once by 1ms, ceding CPU and IO
			// to compaction.
			e.stats.slowdowns.Add(1)
			e.mu.Unlock()
			time.Sleep(time.Millisecond)
			e.mu.Lock()
			delayed = true
		case e.mem.ApproxSize()+int64(n) <= int64(e.cfg.MemtableSize):
			return nil
		case e.imm != nil:
			// Previous memtable still flushing.
			e.stats.memWaits.Add(1)
			e.cond.Wait()
		case e.tree.L0Count() >= e.cfg.L0StopTrigger:
			// Hard limit: block until compaction drains level 0.
			e.stats.stops.Add(1)
			e.cond.Wait()
		default:
			// Rotate: freeze the memtable, start a new WAL, flush in the
			// background.
			if err := e.startNewWAL(); err != nil {
				e.bgErr = err
				return err
			}
			e.imm = e.mem
			e.mem = memtable.New()
			e.flushing = true
			flushSeq := base.SeqNum(e.seq.Load())
			go e.flushWorker(e.imm, e.walNum, flushSeq)
		}
	}
}

// flushWorker writes one immutable memtable to level 0.
func (e *Engine) flushWorker(imm *memtable.Memtable, newLogNum base.FileNum, lastSeq base.SeqNum) {
	err := e.tree.Flush(imm.NewIter(), newLogNum, lastSeq)
	e.mu.Lock()
	if err != nil {
		if e.bgErr == nil {
			e.bgErr = err
		}
	} else {
		e.imm = nil
		e.stats.flushes.Add(1)
	}
	e.flushing = false
	e.cond.Broadcast()
	e.maybeScheduleCompactionLocked()
	e.mu.Unlock()
	e.cleanup()
}

// Flush forces the current memtable to storage and waits for it.
func (e *Engine) Flush() error {
	e.commitMu.Lock()
	e.mu.Lock()
	for e.imm != nil && e.bgErr == nil {
		e.cond.Wait()
	}
	if e.bgErr != nil {
		err := e.bgErr
		e.mu.Unlock()
		e.commitMu.Unlock()
		return err
	}
	if e.mem.Len() == 0 {
		e.mu.Unlock()
		e.commitMu.Unlock()
		return nil
	}
	if err := e.startNewWAL(); err != nil {
		e.mu.Unlock()
		e.commitMu.Unlock()
		return err
	}
	e.imm = e.mem
	e.mem = memtable.New()
	e.flushing = true
	flushSeq := base.SeqNum(e.seq.Load())
	go e.flushWorker(e.imm, e.walNum, flushSeq)
	for e.imm != nil && e.bgErr == nil {
		e.cond.Wait()
	}
	err := e.bgErr
	e.mu.Unlock()
	e.commitMu.Unlock()
	return err
}

// CompactAll flushes and then drives compaction to quiescence on the
// calling goroutine (benchmarks measuring fully compacted stores).
func (e *Engine) CompactAll() error {
	if err := e.Flush(); err != nil {
		return err
	}
	if err := e.tree.CompactAll(); err != nil {
		return err
	}
	e.cleanup()
	return e.WaitIdle()
}
