package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pebblesdb/internal/vfs"
)

// TestConcurrentGetsDuringCompaction proves the pooled get-scratch is safe
// under -race: reader goroutines hammer Get (sharing the scratch pool and
// reusing destination buffers) while writers force continuous memtable
// rotations, flushes and compactions, so probes race with table creation,
// block-cache churn and obsolete-file sweeping the whole time.
func TestConcurrentGetsDuringCompaction(t *testing.T) {
	bothKinds(t, func(t *testing.T, kind Kind) {
		e := openEngine(t, vfs.NewMem(), kind)
		defer e.Close()

		const (
			readers = 4
			writers = 2
			keys    = 400
		)
		rounds := 40
		if testing.Short() {
			rounds = 10
		}

		key := func(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
		val := func(w, r, i int) []byte {
			return []byte(fmt.Sprintf("val-w%d-r%04d-%06d-%s", w, r, i, string(make([]byte, 100))))
		}

		// Seed every key so readers always have hits to verify.
		for i := 0; i < keys; i++ {
			if err := e.Set(key(i), val(0, 0, i), false); err != nil {
				t.Fatal(err)
			}
		}

		var stop atomic.Bool
		var wgW, wgR sync.WaitGroup
		errCh := make(chan error, readers+writers)

		for w := 0; w < writers; w++ {
			wgW.Add(1)
			go func(w int) {
				defer wgW.Done()
				for r := 0; r < rounds; r++ {
					for i := w; i < keys; i += writers {
						if err := e.Set(key(i), val(w, r, i), false); err != nil {
							errCh <- err
							return
						}
					}
				}
			}(w)
		}

		for g := 0; g < readers; g++ {
			wgR.Add(1)
			go func(g int) {
				defer wgR.Done()
				dst := make([]byte, 0, 256)
				for i := 0; !stop.Load(); i++ {
					k := (i*7 + g) % keys
					v, found, err := e.Get(key(k), nil, dst)
					if err != nil {
						errCh <- err
						return
					}
					if !found {
						errCh <- fmt.Errorf("key %d missing", k)
						return
					}
					dst = v[:0]
				}
			}(g)
		}

		// Keep reading through the trailing flush/compaction drain, so
		// probes overlap table creation and obsolete-file sweeping too.
		wgW.Wait()
		if err := e.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		stop.Store(true)
		wgR.Wait()

		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
	})
}
