// Commit pipeline: a LevelDB/Pebble-style group commit replacing the old
// fully-serialized write path. A leader drains the queue of concurrently
// arriving batches, assigns them a contiguous sequence range, appends them
// to the WAL as one record group and hands each batch back to its owning
// goroutine, which applies it to the (concurrent) memtable in parallel
// with the other committers. Visibility is published strictly in sequence
// order through a pending-commit queue that ratchets the visible sequence
// number, and a single fsync — shared through the WAL's sync-request
// queue — satisfies every sync waiter in the group. See DESIGN.md's
// "Commit pipeline" section.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pebblesdb/internal/base"
	"pebblesdb/internal/batch"
	"pebblesdb/internal/memtable"
	"pebblesdb/internal/wal"
)

// commitRequest tracks one batch through the pipeline. The struct is the
// only per-commit allocation the pipeline makes: scheduling and
// publication signal through engine-wide conds, not per-request channels,
// so the uncontended path stays allocation-lean.
type commitRequest struct {
	b    *batch.Batch
	sync bool

	// Filled by the leader before scheduled is set.
	err    error
	mem    *memtable.Memtable // nil when the commit failed before scheduling
	endSeq base.SeqNum
	group  *commitGroup
	// solo is set when the request was scheduled as a group of one: with
	// no concurrent appliers, guard ingestion runs inline (the mutex is
	// uncontended and guard selection stays deterministically in step
	// with the writes, as in the serial write path).
	solo bool
	// stallNanos is the group's makeRoomForWrite duration, recorded by
	// the leader for the slow-op log. Only filled when SlowOpThreshold is
	// set; ordered by the scheduled release store.
	stallNanos int64

	// scheduled is set (with release semantics) once the fields above are
	// final; followers whose batch was taken by another leader poll it
	// (never parking on commitMu — see Apply).
	scheduled atomic.Bool
	// applied is set by the owner once the memtable holds the batch.
	applied atomic.Bool
	// published is guarded by Engine.pendMu; publishLocked sets it when
	// the visible sequence number passes endSeq.
	published bool
}

// commitGroup carries the state shared by every request the same leader
// scheduled: whether any of them asked for durability, and the result of
// the single fsync that covers them all.
type commitGroup struct {
	needSync bool
	syncErr  error
	syncDone chan struct{} // closed by the leader after the group fsync
}

// commitQueue collects batches waiting for a leader. Two backing arrays
// alternate between "being filled" and "being scheduled", so steady-state
// commits allocate no queue memory.
type commitQueue struct {
	mu   sync.Mutex
	reqs []*commitRequest
	// spare is the array handed out by the previous drain. It is touched
	// only inside drain, and drain callers are serialized by commitMu:
	// by the time the next drain recycles it, the previous leader has
	// finished scheduling out of it.
	spare []*commitRequest
}

func (q *commitQueue) enqueue(r *commitRequest) {
	q.mu.Lock()
	q.reqs = append(q.reqs, r)
	q.mu.Unlock()
}

// drain is only called with commitMu held.
func (q *commitQueue) drain() []*commitRequest {
	q.mu.Lock()
	reqs := q.reqs
	q.reqs = q.spare[:0]
	q.mu.Unlock()
	q.spare = reqs
	return reqs
}

// Apply commits a batch atomically: one WAL record, consecutive sequence
// numbers, and memtable application. Concurrent callers are group-
// committed: whichever writer wins the commit lock schedules every queued
// batch (its own included), all of them apply to the memtable in parallel,
// and sync waiters share one fsync.
func (e *Engine) Apply(b *batch.Batch, sync bool) error {
	if b.Empty() {
		return nil
	}
	if e.cfg.WALSync {
		sync = true
	}
	// Reject malformed batches before they are sequenced: once scheduled,
	// a batch that failed to decode midway through application would
	// still have to publish (the ratchet cannot skip it), exposing a
	// partial batch to readers. Validation runs outside all locks.
	if err := b.Validate(); err != nil {
		return err
	}
	start := time.Now()
	if sync {
		e.stats.syncCommits.Add(1)
	}

	var req *commitRequest
	var ledGroup *commitGroup
	var ledWal *wal.Writer
	if e.commitMu.TryLock() {
		group := e.cq.drain()
		if len(group) == 0 && e.pendCount.Load() == 0 {
			// Serial fast path: no leader was active, nothing is queued
			// and nothing is in flight, so there is no concurrency to
			// pipeline — commit inline under the lock, exactly like the
			// classic serial write path, with zero pipeline bookkeeping.
			var st commitStages
			err := e.commitSerialLocked(b, sync, &st)
			e.commitMu.Unlock()
			total := time.Since(start)
			e.observeCommitWait(total)
			e.maybeLogSlowOp(total, st, int(b.Count()), sync)
			return err
		}
		// Writers are queued or still applying: lead them together with
		// our own batch through the pipeline.
		req = newCommitRequest(b, sync)
		group = append(group, req)
		ledGroup, ledWal = e.leadCommitLocked(group)
		e.commitMu.Unlock()
	} else {
		// A leader is active; queue up so it (or the next leader) groups
		// us. CRITICAL: never *block* on commitMu here. Once a leader
		// schedules this request it holds a memtable writer reservation
		// on its behalf, and a rotation inside commitMu waits for that
		// reservation to drain — a follower parked on commitMu.Lock
		// would deadlock the engine. So poll with TryLock, yielding (and
		// eventually sleeping, for write stalls that hold commitMu for
		// seconds) until either scheduled or able to lead.
		req = newCommitRequest(b, sync)
		e.cq.enqueue(req)
		led := false
		for spins := 0; !req.scheduled.Load(); spins++ {
			if !led && e.commitMu.TryLock() {
				if req.scheduled.Load() {
					// Scheduled between the check and the lock: we hold
					// a reservation now, and leading could rotate and
					// wait on ourselves. Queued writers lead themselves.
					e.commitMu.Unlock()
					break
				}
				if group := e.cq.drain(); len(group) > 0 {
					// Our own request is either in this group (we
					// enqueued before draining) or was already taken by
					// another leader; either way it gets scheduled. Lead
					// at most one group so a second TryLock round cannot
					// overwrite an unfinished fsync duty.
					ledGroup, ledWal = e.leadCommitLocked(group)
					led = true
				}
				e.commitMu.Unlock()
				continue
			}
			if spins < 16 {
				runtime.Gosched()
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}

	// Stage timing for the slow-op log is only taken when the threshold
	// is configured, so the unconfigured pipeline pays one branch per
	// stage and no clock reads.
	slow := e.cfg.SlowOpThreshold > 0
	var st commitStages
	var t0 time.Time

	// Apply our own batch concurrently with the other group members.
	// applyBatch cannot fail for a validated batch; the error handling is
	// a backstop.
	applyErr := false
	if req.err == nil && req.mem != nil {
		if slow {
			t0 = time.Now()
		}
		if err := e.applyBatch(req); err != nil {
			req.err = err
			applyErr = true
		}
		if slow {
			st.apply = time.Since(t0)
		}
	}
	if req.mem != nil {
		req.applied.Store(true)
		req.mem.WriterDone()
	}

	// Leader duty: one fsync covers every sync waiter in the led group
	// (ledGroup is only allocated when the group needs one), deduplicated
	// against concurrent groups by the WAL sync queue.
	if ledGroup != nil {
		if slow {
			t0 = time.Now()
		}
		ledGroup.syncErr = ledWal.SyncWait()
		if slow {
			st.walSync += time.Since(t0)
		}
		close(ledGroup.syncDone)
		ledWal.Unref()
	}
	// Error reporting only after WriterDone and Unref: setBgErr takes
	// e.mu, and a rotation holding e.mu may be spinning on this very
	// writer reservation (QuiesceWriters) or waiting inside the old WAL's
	// Close for this very reference.
	if applyErr {
		e.setBgErr(req.err)
	}
	if ledGroup != nil && ledGroup.syncErr != nil {
		e.setBgErr(ledGroup.syncErr)
	}

	if req.mem != nil {
		e.publishAndWait(req)
	}
	if req.sync && req.group != nil && req.group.needSync {
		if slow {
			t0 = time.Now()
		}
		<-req.group.syncDone
		if slow {
			// For the leader syncDone is already closed, so this adds ~0;
			// for followers it is the wait for the shared fsync.
			st.walSync += time.Since(t0)
		}
		if req.err == nil {
			req.err = req.group.syncErr
		}
	}
	if req.err == nil {
		e.stats.writes.Add(int64(b.Count()))
	}
	total := time.Since(start)
	e.observeCommitWait(total)
	if slow {
		st.stall = time.Duration(req.stallNanos)
		e.maybeLogSlowOp(total, st, int(b.Count()), req.sync)
	}
	// The owner is the last goroutine holding the request: the leader's
	// group slice is dead after scheduling, the commit queue slot was
	// drained, and the publication queue nils its slot before setting
	// published (which the owner has already observed). Clear the object
	// references so the pool does not pin retired memtables or batches.
	err := req.err
	req.b, req.mem, req.group = nil, nil, nil
	commitRequestPool.Put(req)
	return err
}

// commitStages breaks one commit's latency into the slow-op log's stage
// taxonomy: write-stall time (makeRoomForWrite), WAL fsync (or the wait
// for the group's shared fsync), and memtable application. Whatever is
// left of the total is queueing/publication wait.
type commitStages struct {
	stall   time.Duration
	walSync time.Duration
	apply   time.Duration
}

// maybeLogSlowOp emits one structured line through the slow-op logger for
// commits whose total latency reached Config.SlowOpThreshold.
func (e *Engine) maybeLogSlowOp(total time.Duration, st commitStages, entries int, sync bool) {
	th := e.cfg.SlowOpThreshold
	if th <= 0 || total < th {
		return
	}
	wait := total - st.stall - st.walSync - st.apply
	if wait < 0 {
		wait = 0
	}
	e.cfg.SlowOpLogf(
		"engine: slow commit: total=%s wait=%s stall=%s wal_sync=%s apply=%s entries=%d sync=%t",
		total, wait, st.stall, st.walSync, st.apply, entries, sync)
}

var commitRequestPool = sync.Pool{New: func() any { return &commitRequest{} }}

func newCommitRequest(b *batch.Batch, sync bool) *commitRequest {
	req := commitRequestPool.Get().(*commitRequest)
	req.b, req.sync = b, sync
	req.err, req.mem, req.endSeq, req.group, req.solo = nil, nil, 0, nil, false
	req.stallNanos = 0
	req.scheduled.Store(false)
	req.applied.Store(false)
	req.published = false
	return req
}

// commitSerialLocked is the zero-concurrency commit: commitMu is held, the
// queue is empty and no scheduled commit is unpublished, so room check,
// sequencing, WAL append, memtable application, inline guard ingestion,
// publication and (for sync) the fsync all run serially — the pre-pipeline
// write path, kept byte-for-byte in behavior for single-writer workloads.
// Rotation needs commitMu, so the memtable and WAL cannot change under us,
// and publishing is a plain store: with the pipeline empty, the visible
// sequence number equals the allocated one.
func (e *Engine) commitSerialLocked(b *batch.Batch, sync bool, st *commitStages) error {
	slow := e.cfg.SlowOpThreshold > 0
	var t0 time.Time
	if slow {
		t0 = time.Now()
	}
	if err := e.makeRoomForWrite(b.ApproxSize()); err != nil {
		return err
	}
	if slow {
		st.stall = time.Since(t0)
	}
	b.SetSeqNum(base.SeqNum(e.logSeq + 1))
	e.logSeq += uint64(b.Count())
	repr := b.Repr()
	if err := e.walW.AddRecord(repr); err != nil {
		e.setBgErr(err)
		return err
	}
	e.stats.walBytes.Add(int64(len(repr)))
	if slow {
		t0 = time.Now()
	}
	err := b.Iterate(func(kind base.Kind, ukey, value []byte, s base.SeqNum) error {
		if kind == base.KindRangeDelete {
			e.mem.DeleteRange(ukey, value, s)
			return nil
		}
		e.mem.Set(ukey, s, kind, value)
		if e.tree.WantGuard(ukey) {
			e.tree.Ingest(ukey)
		}
		return nil
	})
	if err != nil {
		e.setBgErr(err)
		return err
	}
	if slow {
		st.apply = time.Since(t0)
	}
	// Publish visibility only after the memtable holds every entry.
	e.seq.Store(e.logSeq)
	e.stats.commitGroups.Add(1)
	e.stats.commitBatches.Add(1)
	if sync {
		// Holding commitMu through the fsync mirrors the serial path;
		// writers arriving meanwhile queue up and enter the pipeline.
		if slow {
			t0 = time.Now()
		}
		if err := e.walW.SyncWait(); err != nil {
			e.setBgErr(err)
			return err
		}
		if slow {
			st.walSync = time.Since(t0)
		}
	}
	e.stats.writes.Add(int64(b.Count()))
	return nil
}

// leadCommitLocked schedules a group: room check, contiguous sequence
// assignment, memtable writer reservations, publication-queue enqueue and
// the WAL record-group append. Called with commitMu held. Returns the
// group state and the pinned WAL writer when the group needs an fsync, so
// the caller can perform that duty after releasing the lock.
func (e *Engine) leadCommitLocked(group []*commitRequest) (*commitGroup, *wal.Writer) {
	needSync := false
	var total int
	for _, r := range group {
		if r.sync {
			needSync = true
		}
		total += r.b.ApproxSize()
	}
	// Async-only groups never touch the group state, so don't allocate it.
	var g *commitGroup
	if needSync {
		g = &commitGroup{needSync: true, syncDone: make(chan struct{})}
	}

	// One clock pair per group (not per commit) prices the slow-op log's
	// stall stage; leaders amortize it over every batch they schedule.
	roomStart := time.Now()
	if err := e.makeRoomForWrite(total); err != nil {
		// Fail the whole group before any of it was scheduled.
		if g != nil {
			g.syncErr = err
			close(g.syncDone)
		}
		for _, r := range group {
			r.err = err
			r.group = g
			r.scheduled.Store(true)
		}
		return nil, nil
	}
	stallNanos := int64(time.Since(roomStart))

	// Pin the memtable and WAL for the group. Rotation only happens under
	// commitMu, so these stay valid until every reservation drains.
	mem := e.mem
	w := e.walW
	if g != nil {
		w.Ref()
	}
	solo := len(group) == 1
	for _, r := range group {
		r.group = g
		r.mem = mem
		r.solo = solo
		r.stallNanos = stallNanos
		r.b.SetSeqNum(base.SeqNum(e.logSeq + 1))
		e.logSeq += uint64(r.b.Count())
		r.endSeq = base.SeqNum(e.logSeq)
		mem.ReserveWriter()
	}

	// Enqueue for in-order publication before anyone can apply.
	e.pendMu.Lock()
	e.pend = append(e.pend, group...)
	e.pendMu.Unlock()
	e.pendCount.Add(int64(len(group)))

	// One record per batch, appended back-to-back as a record group; the
	// single fsync that follows (if requested) covers all of them.
	var walErr error
	for _, r := range group {
		if walErr != nil {
			r.err = walErr
			continue
		}
		repr := r.b.Repr()
		if err := w.AddRecord(repr); err != nil {
			walErr = err
			r.err = err
			e.setBgErr(err)
			continue
		}
		e.stats.walBytes.Add(int64(len(repr)))
	}
	// On a WAL error the requests are already scheduled; let them flow
	// through publication so the pipeline drains (bgErr fails every
	// subsequent commit anyway).

	e.stats.commitGroups.Add(1)
	e.stats.commitBatches.Add(int64(len(group)))
	for _, r := range group {
		r.scheduled.Store(true)
	}
	return g, w
}

// applyBatch inserts the request's batch into its pinned memtable and
// routes guard candidates to the tree: inline for solo groups (no
// concurrent appliers to contend with), via the ingest sidecar otherwise.
func (e *Engine) applyBatch(req *commitRequest) error {
	var guardKeys [][]byte
	err := req.b.Iterate(func(kind base.Kind, ukey, value []byte, s base.SeqNum) error {
		if kind == base.KindRangeDelete {
			req.mem.DeleteRange(ukey, value, s)
			return nil
		}
		req.mem.Set(ukey, s, kind, value)
		if e.tree.WantGuard(ukey) {
			if req.solo {
				e.tree.Ingest(ukey)
			} else {
				guardKeys = append(guardKeys, append([]byte(nil), ukey...))
			}
		}
		return nil
	})
	if err != nil {
		// No setBgErr here: the caller still holds a memtable writer
		// reservation, and setBgErr needs e.mu, which rotation holds
		// while waiting for reservations (Apply reports it after
		// WriterDone).
		return err
	}
	if len(guardKeys) > 0 {
		e.queueIngest(guardKeys)
	}
	return nil
}

// publishAndWait ratchets the publication queue and blocks until the
// caller's own commit is visible. Publication strictly follows sequence
// order: the head of the queue publishes only once applied, so a reader
// can never observe commit k+1 without commit k. Whichever applier
// finishes last publishes the whole applied prefix and wakes the rest.
func (e *Engine) publishAndWait(req *commitRequest) {
	e.pendMu.Lock()
	e.publishLocked()
	for !req.published {
		e.pubCond.Wait()
	}
	e.pendMu.Unlock()
}

func (e *Engine) publishLocked() {
	n := 0
	for e.pendHead < len(e.pend) && e.pend[e.pendHead].applied.Load() {
		r := e.pend[e.pendHead]
		e.pend[e.pendHead] = nil
		e.pendHead++
		e.seq.Store(uint64(r.endSeq))
		r.published = true
		n++
	}
	if e.pendHead == len(e.pend) {
		// Fully drained: rewind onto the same backing array so the
		// steady state appends without allocating.
		e.pend = e.pend[:0]
		e.pendHead = 0
	} else if e.pendHead >= 64 {
		// Saturated pipelines may never fully drain; compact the live
		// tail (bounded by the in-flight commit count) so the dead
		// prefix cannot grow without bound.
		n := copy(e.pend, e.pend[e.pendHead:])
		for i := n; i < len(e.pend); i++ {
			e.pend[i] = nil
		}
		e.pend = e.pend[:n]
		e.pendHead = 0
	}
	if n > 0 {
		e.pendCount.Add(int64(-n))
		e.pubCond.Broadcast()
	}
}

// ingestQueue is the guard-ingestion sidecar: appliers drop copied guard
// candidates here (already filtered by Tree.WantGuard, so almost all keys
// skip it) and a single background goroutine feeds them to Tree.Ingest,
// keeping the tree's mutex off the commit critical path.
type ingestQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	keys   [][]byte
	active bool
}

func (e *Engine) queueIngest(keys [][]byte) {
	e.ing.mu.Lock()
	e.ing.keys = append(e.ing.keys, keys...)
	if !e.ing.active {
		e.ing.active = true
		go e.ingestWorker()
	}
	e.ing.mu.Unlock()
}

func (e *Engine) ingestWorker() {
	for {
		e.ing.mu.Lock()
		keys := e.ing.keys
		e.ing.keys = nil
		if len(keys) == 0 {
			e.ing.active = false
			e.ing.cond.Broadcast()
			e.ing.mu.Unlock()
			return
		}
		e.ing.mu.Unlock()
		for _, k := range keys {
			e.tree.Ingest(k)
		}
	}
}

// drainIngest waits until the sidecar has consumed every queued guard
// candidate (Flush and Close, so guard selection keeps pace with the data
// it came from).
func (e *Engine) drainIngest() {
	e.ing.mu.Lock()
	for e.ing.active || len(e.ing.keys) > 0 {
		e.ing.cond.Wait()
	}
	e.ing.mu.Unlock()
}

// CommitWaitBuckets are the upper bounds of the commit-wait histogram
// buckets; the last histogram slot counts waits above the final bound.
var CommitWaitBuckets = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

func (e *Engine) observeCommitWait(d time.Duration) {
	e.stats.commitWaitNanos.Add(int64(d))
	for i, b := range CommitWaitBuckets {
		if d <= b {
			e.stats.commitWaitHist[i].Add(1)
			return
		}
	}
	e.stats.commitWaitHist[len(CommitWaitBuckets)].Add(1)
}
