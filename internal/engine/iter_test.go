package engine

import (
	"fmt"
	"testing"

	"pebblesdb/internal/vfs"
)

func TestIterCollapsesVersionsAcrossLayers(t *testing.T) {
	// Versions of one key spread across memtable, L0 and deeper levels;
	// the user iterator must surface exactly the newest live version.
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	e.Set([]byte("k"), []byte("v1"), false)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Set([]byte("k"), []byte("v2"), false)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Set([]byte("k"), []byte("v3"), false) // memtable only

	it, err := e.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.First()
	if !it.Valid() || string(it.Key()) != "k" || string(it.Value()) != "v3" {
		t.Fatalf("got %q=%q valid=%v", it.Key(), it.Value(), it.Valid())
	}
	it.Next()
	if it.Valid() {
		t.Fatal("only one live user key expected")
	}
}

func TestIterHidesTombstonesAcrossLayers(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	for i := 0; i < 10; i++ {
		e.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"), false)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tombstone in the memtable shadows the flushed value.
	e.Delete([]byte("k3"), false)

	it, err := e.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 9 {
		t.Fatalf("got %v", got)
	}
	for _, k := range got {
		if k == "k3" {
			t.Fatal("tombstoned key visible")
		}
	}

	// SeekGE lands after the deleted key.
	it2, _ := e.NewIter(nil)
	defer it2.Close()
	it2.SeekGE([]byte("k3"))
	if !it2.Valid() || string(it2.Key()) != "k4" {
		t.Fatalf("SeekGE(k3) = %q", it2.Key())
	}
}

func TestIterSnapshotIgnoresLaterVersions(t *testing.T) {
	e := openEngine(t, vfs.NewMem(), KindFLSM)
	defer e.Close()

	e.Set([]byte("a"), []byte("old"), false)
	snap := e.NewSnapshot()
	defer snap.Close()
	e.Set([]byte("a"), []byte("new"), false)
	e.Set([]byte("b"), []byte("later"), false)

	it, err := e.NewIter(&IterOptions{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.First()
	if !it.Valid() || string(it.Value()) != "old" {
		t.Fatalf("snapshot iterator sees %q", it.Value())
	}
	it.Next()
	if it.Valid() {
		t.Fatal("snapshot iterator must not see later inserts")
	}
}
