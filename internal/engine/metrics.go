package engine

import (
	"pebblesdb/internal/base"
	"pebblesdb/internal/tablecache"
	"pebblesdb/internal/treebase"
)

// Metrics is a point-in-time summary of store activity, sized for the
// paper's reporting needs (write amplification, stall counts, sstable size
// distributions, memory consumption) plus the commit-pipeline health
// counters (group sizes, fsync amortization, commit waits).
type Metrics struct {
	// Tree describes the on-storage structure, including the write-side
	// block-compression accounting (Tree.Compression: logical vs physical
	// data bytes, encoder time).
	Tree treebase.Metrics
	// Cache describes the table cache (Table 5.4 memory accounting) and
	// the read-side decompression counters.
	Cache tablecache.Metrics

	// SlowdownWrites / StoppedWrites / MemtableWaits count write stalls.
	SlowdownWrites int64
	StoppedWrites  int64
	MemtableWaits  int64
	// StallNanos is the wall time writers spent inside L0 slowdown delays
	// and level0-stop blocks — the latency cost the parallel compaction
	// scheduler exists to shrink.
	StallNanos int64
	// Flushes counts memtable flushes.
	Flushes int64
	// WALBytes counts bytes appended to the write-ahead log.
	WALBytes int64
	// WALSyncs counts physical WAL fsyncs. With group commit this is far
	// below SyncCommits under concurrency: one fsync covers every sync
	// commit whose record reached the log before it.
	WALSyncs int64
	// SyncCommits counts commits that requested durability (WriteOptions
	// Sync or Options.WALSync).
	SyncCommits int64
	// CommitGroups counts commit groups formed by leaders; CommitBatches
	// counts the batches scheduled across them, so CommitBatches /
	// CommitGroups is the mean group-commit size.
	CommitGroups  int64
	CommitBatches int64
	// CommitWaitHist is the commit-latency histogram: bucket i counts
	// commits that completed within CommitWaitBuckets[i]; the final slot
	// counts the overflow. CommitWaitNanos is the summed commit latency,
	// so CommitWaitNanos / sum(CommitWaitHist) is the mean and the
	// Prometheus exposition can render a complete histogram (_sum).
	CommitWaitHist  [len(CommitWaitBuckets) + 1]int64
	CommitWaitNanos int64
	// Gets / Writes / Iterators count operations.
	Gets      int64
	Writes    int64
	Iterators int64
	// Point-read path accounting (the paper's read-cost trade-off, §3.4):
	// GetTablesProbed counts sstables whose blocks were searched on the Get
	// path; GetBloomNegatives counts tables the bloom filters excluded;
	// GetBloomFalsePositives counts probes a filter let through that found
	// nothing; GetBlockCacheHits/Misses are block-cache outcomes on Gets
	// only (iterators and compactions excluded).
	GetTablesProbed        int64
	GetBloomNegatives      int64
	GetBloomFalsePositives int64
	GetBlockCacheHits      int64
	GetBlockCacheMisses    int64
	// Scan-path accounting: IterTablesOpened counts sstable iterators
	// opened by engine iterators (folded in at iterator Close);
	// IterPrefixSkips counts sstables a prefix iterator skipped because
	// their prefix bloom filter ruled the prefix out before any block IO.
	IterTablesOpened int64
	IterPrefixSkips  int64
	// MemtableBytes is the live memtable footprint.
	MemtableBytes int64
	// LastSeq is the last committed sequence number.
	LastSeq base.SeqNum
	// Failure handling: BgRetryableErrors / BgPermanentErrors count
	// background-error degradations by class, BgRetries counts retried
	// background operations, Resumes counts successful Resume calls, and
	// ReadOnly reports whether the store (any store, after Merge) is
	// currently degraded to read-only mode.
	BgRetryableErrors int64
	BgPermanentErrors int64
	BgRetries         int64
	Resumes           int64
	ReadOnly          bool
}

// Merge accumulates o into m, producing the metrics of the union of both
// stores — the aggregation a sharded server reports as one snapshot. Raw
// counters and histogram buckets add; derived ratios (CommitGroupSize,
// SyncsPerCommit, TablesProbedPerGet, GetBlockCacheHitRatio) are methods
// over the summed counters, so they come out operation-weighted rather
// than as a mean-of-means, and the commit-wait histogram merges
// bucket-wise — summing percentiles across shards would double-count the
// distribution's mass. LastSeq takes the max: sequence numbers are
// per-shard streams, and summing them would manufacture a sequence no
// shard ever committed.
func (m *Metrics) Merge(o Metrics) {
	m.Tree.Merge(o.Tree)
	m.Cache.Merge(o.Cache)
	m.SlowdownWrites += o.SlowdownWrites
	m.StoppedWrites += o.StoppedWrites
	m.MemtableWaits += o.MemtableWaits
	m.StallNanos += o.StallNanos
	m.Flushes += o.Flushes
	m.WALBytes += o.WALBytes
	m.WALSyncs += o.WALSyncs
	m.SyncCommits += o.SyncCommits
	m.CommitGroups += o.CommitGroups
	m.CommitBatches += o.CommitBatches
	for i := range m.CommitWaitHist {
		m.CommitWaitHist[i] += o.CommitWaitHist[i]
	}
	m.CommitWaitNanos += o.CommitWaitNanos
	m.Gets += o.Gets
	m.Writes += o.Writes
	m.Iterators += o.Iterators
	m.GetTablesProbed += o.GetTablesProbed
	m.GetBloomNegatives += o.GetBloomNegatives
	m.GetBloomFalsePositives += o.GetBloomFalsePositives
	m.GetBlockCacheHits += o.GetBlockCacheHits
	m.GetBlockCacheMisses += o.GetBlockCacheMisses
	m.IterTablesOpened += o.IterTablesOpened
	m.IterPrefixSkips += o.IterPrefixSkips
	m.MemtableBytes += o.MemtableBytes
	if o.LastSeq > m.LastSeq {
		m.LastSeq = o.LastSeq
	}
	m.BgRetryableErrors += o.BgRetryableErrors
	m.BgPermanentErrors += o.BgPermanentErrors
	m.BgRetries += o.BgRetries
	m.Resumes += o.Resumes
	m.ReadOnly = m.ReadOnly || o.ReadOnly
}

// CommitGroupSize is the mean number of batches per commit group (1.0
// means no grouping occurred).
func (m Metrics) CommitGroupSize() float64 {
	if m.CommitGroups == 0 {
		return 0
	}
	return float64(m.CommitBatches) / float64(m.CommitGroups)
}

// SyncsPerCommit is physical fsyncs divided by durability-requesting
// commits; well below 1.0 under concurrent sync writers.
func (m Metrics) SyncsPerCommit() float64 {
	if m.SyncCommits == 0 {
		return 0
	}
	return float64(m.WALSyncs) / float64(m.SyncCommits)
}

// TablesProbedPerGet is the mean number of sstables actually searched per
// Get — the FLSM read-cost number the bloom filters are meant to keep near
// the leveled baseline's.
func (m Metrics) TablesProbedPerGet() float64 {
	if m.Gets == 0 {
		return 0
	}
	return float64(m.GetTablesProbed) / float64(m.Gets)
}

// GetBlockCacheHitRatio is the block-cache hit ratio on the point-read
// path only.
func (m Metrics) GetBlockCacheHitRatio() float64 {
	total := m.GetBlockCacheHits + m.GetBlockCacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.GetBlockCacheHits) / float64(total)
}

// IterTableSkipRatio is the fraction of prefix-filter-eligible sstables
// that prefix iterators skipped without IO: skips / (skips + opens). Zero
// when no prefix scans ran or no filter ever excluded a table.
func (m Metrics) IterTableSkipRatio() float64 {
	total := m.IterPrefixSkips + m.IterTablesOpened
	if total == 0 {
		return 0
	}
	return float64(m.IterPrefixSkips) / float64(total)
}

// Metrics returns a snapshot of store statistics. The engine's atomic
// counters are loaded in one pass (engineStats.snapshot, each counter
// read exactly once), the memtable footprint under e.mu, and the tree's
// structural metrics under the tree mutex — so a snapshot taken while a
// saturated compaction scheduler mutates every counter is internally
// consistent per group and safe to Merge concurrently from many
// scrapers.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	e.stats.snapshot(&m)
	m.Tree = e.tree.Metrics()
	m.Cache = e.tree.CacheMetrics()
	m.LastSeq = base.SeqNum(e.seq.Load())
	m.ReadOnly = e.readOnly.Load()
	e.mu.Lock()
	m.MemtableBytes = e.mem.ApproxSize()
	if e.imm != nil {
		m.MemtableBytes += e.imm.ApproxSize()
	}
	e.mu.Unlock()
	return m
}
