package engine

import (
	"pebblesdb/internal/base"
	"pebblesdb/internal/tablecache"
	"pebblesdb/internal/treebase"
)

// Metrics is a point-in-time summary of store activity, sized for the
// paper's reporting needs (write amplification, stall counts, sstable size
// distributions, memory consumption).
type Metrics struct {
	// Tree describes the on-storage structure.
	Tree treebase.Metrics
	// Cache describes the table cache (Table 5.4 memory accounting).
	Cache tablecache.Metrics

	// SlowdownWrites / StoppedWrites / MemtableWaits count write stalls.
	SlowdownWrites int64
	StoppedWrites  int64
	MemtableWaits  int64
	// Flushes counts memtable flushes.
	Flushes int64
	// WALBytes counts bytes appended to the write-ahead log.
	WALBytes int64
	// Gets / Writes / Iterators count operations.
	Gets      int64
	Writes    int64
	Iterators int64
	// MemtableBytes is the live memtable footprint.
	MemtableBytes int64
	// LastSeq is the last committed sequence number.
	LastSeq base.SeqNum
}

// Metrics returns a snapshot of store statistics.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		Tree:           e.tree.Metrics(),
		Cache:          e.tree.CacheMetrics(),
		SlowdownWrites: e.stats.slowdowns.Load(),
		StoppedWrites:  e.stats.stops.Load(),
		MemtableWaits:  e.stats.memWaits.Load(),
		Flushes:        e.stats.flushes.Load(),
		WALBytes:       e.stats.walBytes.Load(),
		Gets:           e.stats.gets.Load(),
		Writes:         e.stats.writes.Load(),
		Iterators:      e.stats.iterators.Load(),
		LastSeq:        base.SeqNum(e.seq.Load()),
	}
	e.mu.Lock()
	m.MemtableBytes = e.mem.ApproxSize()
	if e.imm != nil {
		m.MemtableBytes += e.imm.ApproxSize()
	}
	e.mu.Unlock()
	return m
}
