// Package tablecache keeps a bounded number of sstables open, holding their
// file handles, index blocks and bloom filters resident. The paper's read
// experiments hinge on this cache: "the key-value stores cache a limited
// number of sstable index blocks (default: 1000); since PebblesDB has
// fewer, larger files, most of its sstable-index-blocks are cached" (§5.3).
package tablecache

import (
	"path/filepath"

	"pebblesdb/internal/base"
	"pebblesdb/internal/cache"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/vfs"
)

// TableCache opens sstables on demand and retains up to a fixed number of
// Readers, evicting least-recently used.
type TableCache struct {
	fs         vfs.FS
	dir        string
	blockCache *cache.Cache
	readers    *cache.Cache
	// codec aggregates block-decompression work across all readers opened
	// through this cache (sstable format v2 compressed blocks).
	codec sstable.CodecStats
}

// New returns a table cache over dir holding up to size open tables.
// blockCache may be nil.
func New(fs vfs.FS, dir string, size int, blockCache *cache.Cache) *TableCache {
	tc := &TableCache{
		fs:         fs,
		dir:        dir,
		blockCache: blockCache,
	}
	tc.readers = cache.New(int64(size), func(_ cache.Key, v interface{}) {
		// Drop the cache's reference; the reader closes once the last
		// in-flight user releases theirs.
		v.(*sstable.Reader).Unref()
	})
	return tc
}

// Find returns the Reader for file fn of the given size, opening it if
// necessary. The caller receives a reference and must call Unref when
// done; eviction only drops the cache's own reference.
func (tc *TableCache) Find(fn base.FileNum, size uint64) (*sstable.Reader, error) {
	k := cache.Key{File: uint64(fn)}
	if v, ok := tc.readers.GetHold(k, func(v interface{}) { v.(*sstable.Reader).Ref() }); ok {
		return v.(*sstable.Reader), nil
	}
	path := filepath.Join(tc.dir, base.MakeFilename(base.FileTypeTable, fn))
	f, err := tc.fs.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := sstable.Open(f, int64(size), fn, tc.blockCache, &tc.codec)
	if err != nil {
		f.Close()
		return nil, err
	}
	// One reference for the caller on top of the opener's reference, which
	// the cache takes over (and releases on eviction).
	r.Ref()
	tc.readers.Set(k, r, 1)
	return r, nil
}

// Evict drops file fn from the table cache and the block cache, closing the
// Reader. Called when a compaction deletes the file.
func (tc *TableCache) Evict(fn base.FileNum) {
	tc.readers.Delete(cache.Key{File: uint64(fn)})
	if tc.blockCache != nil {
		tc.blockCache.DeleteFile(uint64(fn))
	}
}

// Metrics summarizes resident memory for Table 5.4 plus read-side codec
// work.
type Metrics struct {
	OpenTables   int
	FilterBytes  int64
	IndexBytes   int64
	Hits, Misses int64
	// BlocksDecompressed / BytesDecompressed / DecompressNanos account
	// compressed data blocks inflated on read; block-cache hits skip the
	// codec and do not appear here.
	BlocksDecompressed int64
	BytesDecompressed  int64
	DecompressNanos    int64
}

// Merge accumulates o into m, counter-wise (shard aggregation).
func (m *Metrics) Merge(o Metrics) {
	m.OpenTables += o.OpenTables
	m.FilterBytes += o.FilterBytes
	m.IndexBytes += o.IndexBytes
	m.Hits += o.Hits
	m.Misses += o.Misses
	m.BlocksDecompressed += o.BlocksDecompressed
	m.BytesDecompressed += o.BytesDecompressed
	m.DecompressNanos += o.DecompressNanos
}

// Metrics walks the cached readers. Approximate: concurrent evictions may
// skew counts slightly.
func (tc *TableCache) Metrics() Metrics {
	st := tc.readers.Stats()
	m := Metrics{
		OpenTables:         st.Entries,
		Hits:               st.Hits,
		Misses:             st.Misses,
		BlocksDecompressed: tc.codec.BlocksDecompressed.Load(),
		BytesDecompressed:  tc.codec.BytesDecompressed.Load(),
		DecompressNanos:    tc.codec.DecompressNanos.Load(),
	}
	tc.readers.Range(func(_ cache.Key, v interface{}) {
		r := v.(*sstable.Reader)
		m.FilterBytes += int64(r.FilterMemory())
		m.IndexBytes += int64(r.IndexMemory())
	})
	return m
}

// Close evicts and closes all cached readers.
func (tc *TableCache) Close() {
	tc.readers.Clear()
}
