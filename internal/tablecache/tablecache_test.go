package tablecache

import (
	"fmt"
	"path/filepath"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/sstable"
	"pebblesdb/internal/vfs"
)

func makeTable(t *testing.T, fs vfs.FS, dir string, fn base.FileNum, nkeys int) uint64 {
	t.Helper()
	fs.MkdirAll(dir)
	f, err := fs.Create(filepath.Join(dir, base.MakeFilename(base.FileTypeTable, fn)))
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{BloomBitsPerKey: 10})
	for i := 0; i < nkeys; i++ {
		ik := base.MakeInternalKey(nil, []byte(fmt.Sprintf("key%06d", i)), base.SeqNum(i+1), base.KindSet)
		if err := w.Add(ik, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	info, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	return info.Size
}

func TestFindCachesReaders(t *testing.T) {
	fs := vfs.NewMem()
	size := makeTable(t, fs, "db", 1, 100)
	tc := New(fs, "db", 100, nil)
	defer tc.Close()

	r1, err := tc.Find(1, size)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tc.Find(1, size)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second Find should hit the cache")
	}
	m := tc.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.OpenTables != 1 {
		t.Fatalf("metrics %+v", m)
	}
	if m.FilterBytes == 0 || m.IndexBytes == 0 {
		t.Fatalf("resident memory not reported: %+v", m)
	}
	r1.Unref()
	r2.Unref()
}

func TestFindMissingFile(t *testing.T) {
	fs := vfs.NewMem()
	tc := New(fs, "db", 10, nil)
	defer tc.Close()
	if _, err := tc.Find(42, 100); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestEvictClosesWhenUnreferenced(t *testing.T) {
	fs := vfs.NewMem()
	size := makeTable(t, fs, "db", 1, 50)
	tc := New(fs, "db", 10, nil)
	defer tc.Close()

	r, err := tc.Find(1, size)
	if err != nil {
		t.Fatal(err)
	}
	// Evict while referenced: the reader must stay usable.
	tc.Evict(1)
	it := r.NewIter()
	it.First()
	if !it.Valid() {
		t.Fatal("evicted-but-referenced reader unusable")
	}
	it.Close()
	r.Unref()

	// A new Find reopens the file.
	r2, err := tc.Find(1, size)
	if err != nil {
		t.Fatal(err)
	}
	r2.Unref()
}

func TestEvictionUnderPressure(t *testing.T) {
	fs := vfs.NewMem()
	var sizes []uint64
	for fn := base.FileNum(1); fn <= 64; fn++ {
		sizes = append(sizes, makeTable(t, fs, "db", fn, 10))
	}
	tc := New(fs, "db", 16, nil) // tiny cache forces eviction
	defer tc.Close()
	for fn := base.FileNum(1); fn <= 64; fn++ {
		r, err := tc.Find(fn, sizes[fn-1])
		if err != nil {
			t.Fatal(err)
		}
		it := r.NewIter()
		it.First()
		if !it.Valid() {
			t.Fatalf("table %d unreadable", fn)
		}
		it.Close()
		r.Unref()
	}
	if m := tc.Metrics(); m.OpenTables > 16 {
		t.Fatalf("cache exceeded capacity: %+v", m)
	}
}
