// Package wal implements the write-ahead log in the LevelDB record format:
// 32 KB blocks of chunks, each chunk carrying a masked CRC-32C, a length,
// and a type (full / first / middle / last) so that records spanning blocks
// are reassembled and torn tails are detected. The MANIFEST uses the same
// format (§4.3.1: PebblesDB persists guard metadata in the MANIFEST, which
// reuses the battle-tested LevelDB log machinery).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pebblesdb/internal/crc"
	"pebblesdb/internal/obs"
	"pebblesdb/internal/vfs"
)

// BlockSize is the log block size in bytes.
const BlockSize = 32 * 1024

const headerSize = 7 // crc:4, length:2, type:1

const (
	chunkFull   = 1
	chunkFirst  = 2
	chunkMiddle = 3
	chunkLast   = 4
)

// ErrCorrupt indicates a record that failed CRC or framing checks. Readers
// treat it as end-of-log for the tail record (torn write) but surface it
// for earlier records.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrWriterClosed is returned by SyncWait on a closed Writer.
var ErrWriterClosed = errors.New("wal: writer is closed")

// DefaultSyncStallThreshold is the fsync duration above which a Writer
// with a Listener reports an EventWALSyncStall. Healthy fsyncs are
// hundreds of microseconds to a few milliseconds; 20ms is a device or
// queueing anomaly worth a trace entry.
const DefaultSyncStallThreshold = 20 * time.Millisecond

// Writer appends length-prefixed records to a log file. AddRecord callers
// must serialize among themselves (the engine's commit leader does); the
// sync-request queue (SyncWait) may run concurrently with appends.
type Writer struct {
	f           vfs.File
	blockOffset int
	buf         [headerSize]byte
	// werr is the sticky append error: a failed write may have left a torn
	// chunk mid-file, and any record appended after the tear would be
	// unreadable on replay (the reader treats the tear as end-of-log). Once
	// an append fails, every later AddRecord reports the failure instead of
	// silently writing records recovery can never see. Touched only by
	// AddRecord callers, which serialize among themselves.
	werr error

	// SyncCounter, when non-nil, is incremented once per physical fsync;
	// the engine points it at its syncs-per-commit metric. Set it before
	// the first SyncWait.
	SyncCounter *atomic.Int64

	// Listener, when non-nil, receives an EventWALSyncStall for every
	// physical fsync slower than SyncStallThreshold. Set it (like
	// SyncCounter) before the first SyncWait.
	Listener obs.Listener
	// SyncStallThreshold is the fsync duration at which a sync-stall
	// event fires; zero selects DefaultSyncStallThreshold.
	SyncStallThreshold time.Duration

	// The sync-request queue, generation-style: each completed fsync
	// round increments syncGen, and a caller is satisfied by any round
	// that *started* at or after its request. Whoever finds no round in
	// flight leads exactly one round and then hands off, so one fsync
	// satisfies every commit whose record reached the log before it while
	// no single caller is captured doing fsyncs for later arrivals.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncGen  uint64
	syncErr  error
	syncing  bool
	refs     int
	closed   bool
}

// NewWriter returns a Writer appending to f, which must be empty or have
// been written only by a Writer whose final block offset is known to be 0.
func NewWriter(f vfs.File) *Writer {
	w := &Writer{f: f}
	w.syncCond = sync.NewCond(&w.syncMu)
	return w
}

// AddRecord appends one record. After any append failure the Writer is
// poisoned: every subsequent AddRecord returns the original error (see
// werr). The caller rotates to a fresh log to resume.
func (w *Writer) AddRecord(p []byte) error {
	if w.werr != nil {
		return w.werr
	}
	begin := true
	for {
		leftover := BlockSize - w.blockOffset
		if leftover < headerSize {
			// Pad the block tail with zeros.
			if leftover > 0 {
				var zeros [headerSize]byte
				if _, err := w.f.Write(zeros[:leftover]); err != nil {
					w.werr = err
					return err
				}
			}
			w.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := p
		if len(frag) > avail {
			frag = frag[:avail]
		}
		end := len(frag) == len(p)

		var typ byte
		switch {
		case begin && end:
			typ = chunkFull
		case begin:
			typ = chunkFirst
		case end:
			typ = chunkLast
		default:
			typ = chunkMiddle
		}
		if err := w.emit(typ, frag); err != nil {
			w.werr = err
			return err
		}
		p = p[len(frag):]
		begin = false
		if end {
			return nil
		}
	}
}

func (w *Writer) emit(typ byte, frag []byte) error {
	c := crc.ValueExtended([]byte{typ}, frag)
	binary.LittleEndian.PutUint32(w.buf[0:4], c)
	binary.LittleEndian.PutUint16(w.buf[4:6], uint16(len(frag)))
	w.buf[6] = typ
	if _, err := w.f.Write(w.buf[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(frag); err != nil {
		return err
	}
	w.blockOffset += headerSize + len(frag)
	return nil
}

// Sync flushes the log to durable storage immediately, bypassing the
// sync-request queue. Use SyncWait on the commit path.
func (w *Writer) Sync() error { return w.f.Sync() }

// SyncWait makes every record appended before the call durable, sharing
// fsyncs with concurrent callers: all requests outstanding when a round
// starts are satisfied by that one fsync. An in-flight round may have
// started before this call's records hit the log, so such a caller waits
// for the round after it. Leadership rotates per round, so no caller is
// held beyond the first round that covers it.
func (w *Writer) SyncWait() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	target := w.syncGen + 1
	if w.syncing {
		target++
	}
	for w.syncGen < target {
		if w.closed {
			return ErrWriterClosed
		}
		if !w.syncing {
			// Lead one round for everyone currently waiting.
			w.syncing = true
			w.syncMu.Unlock()
			start := time.Now()
			err := w.f.Sync()
			if w.SyncCounter != nil {
				w.SyncCounter.Add(1)
			}
			if w.Listener != nil {
				th := w.SyncStallThreshold
				if th == 0 {
					th = DefaultSyncStallThreshold
				}
				if d := time.Since(start); d >= th {
					w.Listener.Notify(obs.Event{
						Kind: obs.EventWALSyncStall, Nanos: obs.Monotonic(),
						Level: -1, Dur: d, Err: err, Detail: "fsync",
					})
				}
			}
			w.syncMu.Lock()
			w.syncing = false
			w.syncGen++
			// Sticky: once an fsync fails, records covered by that round
			// may never have reached storage even if a later round
			// succeeds, so every subsequent SyncWait reports the failure.
			if err != nil && w.syncErr == nil {
				w.syncErr = err
			}
			w.syncCond.Broadcast()
		} else {
			w.syncCond.Wait()
		}
	}
	return w.syncErr
}

// Ref pins the Writer against Close. The engine's commit leader takes a
// reference (under the commit lock) before it releases the lock and later
// calls SyncWait, so a WAL rotation cannot close the file out from under a
// pending sync.
func (w *Writer) Ref() {
	w.syncMu.Lock()
	w.refs++
	w.syncMu.Unlock()
}

// Unref releases a Ref.
func (w *Writer) Unref() {
	w.syncMu.Lock()
	w.refs--
	if w.refs == 0 {
		w.syncCond.Broadcast()
	}
	w.syncMu.Unlock()
}

// Close closes the underlying file after draining references and pending
// sync rounds.
func (w *Writer) Close() error {
	w.syncMu.Lock()
	for w.syncing || w.refs > 0 {
		w.syncCond.Wait()
	}
	w.closed = true
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return w.f.Close()
}

// Reader decodes records from a log file image.
type Reader struct {
	data []byte
	off  int
	rec  []byte
}

// NewReader reads the whole file (of the given size) and returns a Reader
// over it. Log files are bounded by the memtable size, so slurping is fine.
func NewReader(f vfs.File, size int64) (*Reader, error) {
	data := make([]byte, size)
	if size > 0 {
		n, err := f.ReadAt(data, 0)
		if err != nil && err != io.EOF {
			return nil, err
		}
		data = data[:n]
	}
	return &Reader{data: data}, nil
}

// NewReaderBytes returns a Reader over an in-memory log image.
func NewReaderBytes(data []byte) *Reader { return &Reader{data: data} }

// Next returns the next record, or io.EOF at the end of the log. A torn or
// corrupt tail terminates the log with io.EOF (standard recovery
// semantics); corruption followed by more valid data returns ErrCorrupt.
func (r *Reader) Next() ([]byte, error) {
	r.rec = r.rec[:0]
	inFragmented := false
	for {
		blockLeft := BlockSize - r.off%BlockSize
		if blockLeft < headerSize {
			r.off += blockLeft // skip block padding
		}
		if r.off+headerSize > len(r.data) {
			return nil, io.EOF
		}
		hdr := r.data[r.off : r.off+headerSize]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		typ := hdr[6]
		if typ == 0 && wantCRC == 0 && length == 0 {
			return nil, io.EOF // zero padding / preallocated tail
		}
		if r.off+headerSize+length > len(r.data) {
			return nil, io.EOF // torn tail
		}
		frag := r.data[r.off+headerSize : r.off+headerSize+length]
		if crc.ValueExtended([]byte{typ}, frag) != wantCRC {
			return nil, io.EOF // torn or corrupt tail record
		}
		r.off += headerSize + length

		switch typ {
		case chunkFull:
			if inFragmented {
				return nil, fmt.Errorf("%w: full chunk inside fragmented record", ErrCorrupt)
			}
			return frag, nil
		case chunkFirst:
			if inFragmented {
				return nil, fmt.Errorf("%w: first chunk inside fragmented record", ErrCorrupt)
			}
			inFragmented = true
			r.rec = append(r.rec, frag...)
		case chunkMiddle:
			if !inFragmented {
				return nil, fmt.Errorf("%w: middle chunk outside fragmented record", ErrCorrupt)
			}
			r.rec = append(r.rec, frag...)
		case chunkLast:
			if !inFragmented {
				return nil, fmt.Errorf("%w: last chunk outside fragmented record", ErrCorrupt)
			}
			return append(r.rec, frag...), nil
		default:
			return nil, fmt.Errorf("%w: unknown chunk type %d", ErrCorrupt, typ)
		}
	}
}
