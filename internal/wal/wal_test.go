package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"pebblesdb/internal/vfs"
)

func roundtrip(t *testing.T, records [][]byte) {
	t.Helper()
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	for _, r := range records {
		if err := w.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	rf, _ := fs.Open("log")
	size, _ := fs.Stat("log")
	r, err := NewReader(rf, size)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundtripSmallRecords(t *testing.T) {
	roundtrip(t, [][]byte{
		[]byte("one"), []byte("two"), []byte("three"), {}, []byte("after-empty"),
	})
}

func TestRoundtripLargeRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var records [][]byte
	for _, size := range []int{BlockSize - headerSize, BlockSize, BlockSize + 1, 3 * BlockSize, 100000} {
		r := make([]byte, size)
		rng.Read(r)
		records = append(records, r)
	}
	roundtrip(t, records)
}

func TestRoundtripManyMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var records [][]byte
	for i := 0; i < 500; i++ {
		r := make([]byte, rng.Intn(2000))
		rng.Read(r)
		records = append(records, r)
	}
	roundtrip(t, records)
}

func TestBlockBoundaryPadding(t *testing.T) {
	// A record that leaves less than a header of space forces padding.
	first := make([]byte, BlockSize-headerSize-3) // leaves 3 bytes
	roundtrip(t, [][]byte{first, []byte("next")})
}

func TestTornTailIgnored(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	w.AddRecord([]byte("complete"))
	w.AddRecord([]byte("will-be-torn"))
	f.Close()

	size, _ := fs.Stat("log")
	rf, _ := fs.Open("log")
	data := make([]byte, size)
	rf.ReadAt(data, 0)
	rf.Close()

	// Chop bytes off the tail: the first record must still decode, the
	// torn one must terminate the log cleanly.
	for cut := 1; cut < 12; cut++ {
		r := NewReaderBytes(data[:len(data)-cut])
		got, err := r.Next()
		if err != nil || string(got) != "complete" {
			t.Fatalf("cut %d: first record: %q %v", cut, got, err)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("cut %d: torn tail should read as EOF, got %v", cut, err)
		}
	}
}

func TestCorruptTailCRC(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	w.AddRecord([]byte("good"))
	w.AddRecord([]byte("bad"))
	f.Close()

	size, _ := fs.Stat("log")
	rf, _ := fs.Open("log")
	data := make([]byte, size)
	rf.ReadAt(data, 0)
	rf.Close()

	// Flip a payload byte in the second record.
	data[len(data)-1] ^= 0xff
	r := NewReaderBytes(data)
	if got, err := r.Next(); err != nil || string(got) != "good" {
		t.Fatalf("first record: %q %v", got, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("corrupt tail should read as EOF, got %v", err)
	}
}

func TestReaderEmptyFile(t *testing.T) {
	r := NewReaderBytes(nil)
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty log: %v", err)
	}
}

func TestManyRecordsAcrossBlocks(t *testing.T) {
	var records [][]byte
	for i := 0; i < 2000; i++ {
		records = append(records, []byte(fmt.Sprintf("record-%06d-%s", i, bytes.Repeat([]byte("x"), i%97))))
	}
	roundtrip(t, records)
}
