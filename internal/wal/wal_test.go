package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pebblesdb/internal/vfs"
)

func roundtrip(t *testing.T, records [][]byte) {
	t.Helper()
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	for _, r := range records {
		if err := w.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	rf, _ := fs.Open("log")
	size, _ := fs.Stat("log")
	r, err := NewReader(rf, size)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundtripSmallRecords(t *testing.T) {
	roundtrip(t, [][]byte{
		[]byte("one"), []byte("two"), []byte("three"), {}, []byte("after-empty"),
	})
}

func TestRoundtripLargeRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var records [][]byte
	for _, size := range []int{BlockSize - headerSize, BlockSize, BlockSize + 1, 3 * BlockSize, 100000} {
		r := make([]byte, size)
		rng.Read(r)
		records = append(records, r)
	}
	roundtrip(t, records)
}

func TestRoundtripManyMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var records [][]byte
	for i := 0; i < 500; i++ {
		r := make([]byte, rng.Intn(2000))
		rng.Read(r)
		records = append(records, r)
	}
	roundtrip(t, records)
}

func TestBlockBoundaryPadding(t *testing.T) {
	// A record that leaves less than a header of space forces padding.
	first := make([]byte, BlockSize-headerSize-3) // leaves 3 bytes
	roundtrip(t, [][]byte{first, []byte("next")})
}

func TestTornTailIgnored(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	w.AddRecord([]byte("complete"))
	w.AddRecord([]byte("will-be-torn"))
	f.Close()

	size, _ := fs.Stat("log")
	rf, _ := fs.Open("log")
	data := make([]byte, size)
	rf.ReadAt(data, 0)
	rf.Close()

	// Chop bytes off the tail: the first record must still decode, the
	// torn one must terminate the log cleanly.
	for cut := 1; cut < 12; cut++ {
		r := NewReaderBytes(data[:len(data)-cut])
		got, err := r.Next()
		if err != nil || string(got) != "complete" {
			t.Fatalf("cut %d: first record: %q %v", cut, got, err)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("cut %d: torn tail should read as EOF, got %v", cut, err)
		}
	}
}

func TestCorruptTailCRC(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	w.AddRecord([]byte("good"))
	w.AddRecord([]byte("bad"))
	f.Close()

	size, _ := fs.Stat("log")
	rf, _ := fs.Open("log")
	data := make([]byte, size)
	rf.ReadAt(data, 0)
	rf.Close()

	// Flip a payload byte in the second record.
	data[len(data)-1] ^= 0xff
	r := NewReaderBytes(data)
	if got, err := r.Next(); err != nil || string(got) != "good" {
		t.Fatalf("first record: %q %v", got, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("corrupt tail should read as EOF, got %v", err)
	}
}

func TestReaderEmptyFile(t *testing.T) {
	r := NewReaderBytes(nil)
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty log: %v", err)
	}
}

func TestManyRecordsAcrossBlocks(t *testing.T) {
	var records [][]byte
	for i := 0; i < 2000; i++ {
		records = append(records, []byte(fmt.Sprintf("record-%06d-%s", i, bytes.Repeat([]byte("x"), i%97))))
	}
	roundtrip(t, records)
}

// countingSyncFile wraps a vfs.File and counts (slow) fsyncs.
type countingSyncFile struct {
	vfs.File
	syncs atomic.Int64
}

func (f *countingSyncFile) Sync() error {
	f.syncs.Add(1)
	time.Sleep(200 * time.Microsecond)
	return f.File.Sync()
}

// TestSyncWaitAmortizes checks the sync-request queue: concurrent
// SyncWait callers share fsyncs, and every caller still gets durability
// (an fsync that started at or after its request).
func TestSyncWaitAmortizes(t *testing.T) {
	fs := vfs.NewMem()
	raw, _ := fs.Create("log")
	f := &countingSyncFile{File: raw}
	w := NewWriter(f)
	var counted atomic.Int64
	w.SyncCounter = &counted

	const callers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				mu.Lock()
				err := w.AddRecord([]byte(fmt.Sprintf("rec-%d-%d", c, i)))
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.SyncWait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	total := int64(callers * 10)
	if f.syncs.Load() != counted.Load() {
		t.Fatalf("SyncCounter %d != physical syncs %d", counted.Load(), f.syncs.Load())
	}
	if got := f.syncs.Load(); got >= total {
		t.Fatalf("no amortization: %d fsyncs for %d SyncWait calls", got, total)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.SyncWait(); err != ErrWriterClosed {
		t.Fatalf("SyncWait after Close = %v, want ErrWriterClosed", err)
	}
}

// TestCloseWaitsForRefs checks that Close drains references: a pinned
// writer must stay usable for SyncWait until Unref.
func TestCloseWaitsForRefs(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	if err := w.AddRecord([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	w.Ref()
	closed := make(chan error, 1)
	go func() { closed <- w.Close() }()
	// Close must not complete while the ref is held.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while ref held", err)
	case <-time.After(10 * time.Millisecond):
	}
	if err := w.SyncWait(); err != nil {
		t.Fatalf("SyncWait on referenced writer: %v", err)
	}
	w.Unref()
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}
