package pebblesdb

import (
	"fmt"
	"strings"

	"pebblesdb/internal/engine"
	"pebblesdb/internal/vfs"
)

// Metrics is a point-in-time summary of store behaviour, including the IO
// accounting behind the paper's write-amplification results.
type Metrics struct {
	engine.Metrics

	// IO is the byte-level filesystem accounting since Open.
	IO vfs.IOStats
	// UserBytesWritten is the total key+value payload the application has
	// written; the denominator of write amplification.
	UserBytesWritten int64
}

// Merge accumulates o into m, yielding the combined metrics of both
// stores — how a sharded server (cmd/dbserver) reports M engines as one
// snapshot. Counters and histograms add; ratio-style numbers
// (WriteAmplification and the engine.Metrics methods) derive from the
// summed counters afterwards, so each shard contributes in proportion to
// its traffic instead of each shard's ratio counting once.
func (m *Metrics) Merge(o Metrics) {
	m.Metrics.Merge(o.Metrics)
	m.IO = m.IO.Add(o.IO)
	m.UserBytesWritten += o.UserBytesWritten
}

// WriteAmplification is total write IO divided by user data written
// (Fig 1.1). Returns 0 before any writes.
func (m Metrics) WriteAmplification() float64 {
	if m.UserBytesWritten == 0 {
		return 0
	}
	return float64(m.IO.TotalWritten()) / float64(m.UserBytesWritten)
}

// String renders the metrics as a human-readable report: a per-level
// table (files, bytes, guards) followed by the compaction, stall, commit
// pipeline, compression, read/scan path and commit-latency summaries.
// dbbench prints it after each run and the debug endpoint serves it at
// /debug/metrics?format=text.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %8s %12s %8s\n", "level", "tables", "bytes", "guards")
	var totFiles int64
	var totBytes int64
	for l := range m.Tree.LevelFiles {
		files := m.Tree.LevelFiles[l]
		var bytes int64
		if l < len(m.Tree.LevelBytes) {
			bytes = m.Tree.LevelBytes[l]
		}
		guards := "-"
		if l < len(m.Tree.GuardsPerLevel) && m.Tree.GuardsPerLevel[l] > 0 {
			guards = fmt.Sprintf("%d", m.Tree.GuardsPerLevel[l])
		}
		totFiles += int64(files)
		totBytes += bytes
		if files == 0 && guards == "-" {
			continue
		}
		fmt.Fprintf(&b, "%7s %8d %12s %8s\n", fmt.Sprintf("L%d", l), files, fmtBytes(bytes), guards)
	}
	fmt.Fprintf(&b, "%7s %8d %12s\n", "total", totFiles, fmtBytes(totBytes))
	fmt.Fprintf(&b, "flushes %d (%s), compactions %d (in-place %d, trivial %d, seek %d), in %s out %s\n",
		m.Flushes, fmtBytes(m.Tree.BytesFlushed),
		m.Tree.Compactions, m.Tree.InPlaceMerges, m.Tree.TrivialMoves, m.Tree.SeekCompactions,
		fmtBytes(m.Tree.BytesCompactedIn), fmtBytes(m.Tree.BytesCompactedOut))
	fmt.Fprintf(&b, "stalls: slowdown %d, stop %d, memtable waits %d, write-stall %.1f ms\n",
		m.SlowdownWrites, m.StoppedWrites, m.MemtableWaits, float64(m.StallNanos)/1e6)
	fmt.Fprintf(&b, "compaction scheduler: %d units, peak parallelism %d (intra-level %d), %d claim conflicts, claim stall %.1f ms\n",
		m.Tree.CompactionUnits, m.Tree.PeakUnitsInflight, m.Tree.MaxLevelParallelism(),
		m.Tree.ClaimConflicts, float64(m.Tree.ClaimStallNanos)/1e6)
	fmt.Fprintf(&b, "commit pipeline: %d groups, %.2f batches/group, %d fsyncs / %d sync commits (%.3f syncs/commit)\n",
		m.CommitGroups, m.CommitGroupSize(), m.WALSyncs, m.SyncCommits, m.SyncsPerCommit())
	cs := m.Tree.Compression
	fmt.Fprintf(&b, "compression: logical %s -> physical %s (ratio %.3f), %d/%d blocks compressed, encode %.1f ms\n",
		fmtBytes(cs.LogicalDataBytes), fmtBytes(cs.PhysicalDataBytes),
		cs.Ratio(), cs.CompressedBlocks, cs.DataBlocks, float64(cs.CompressNanos)/1e6)
	fmt.Fprintf(&b, "decompression: %d blocks, %s inflated, %.1f ms\n",
		m.Cache.BlocksDecompressed, fmtBytes(m.Cache.BytesDecompressed), float64(m.Cache.DecompressNanos)/1e6)
	fmt.Fprintf(&b, "read path: %d gets, %.2f tables probed/get, bloom %d negative / %d false positive, block cache %d/%d hits (%.1f%%)\n",
		m.Gets, m.TablesProbedPerGet(), m.GetBloomNegatives, m.GetBloomFalsePositives,
		m.GetBlockCacheHits, m.GetBlockCacheHits+m.GetBlockCacheMisses, 100*m.GetBlockCacheHitRatio())
	fmt.Fprintf(&b, "scan path: %d table iterators opened, %d prefix-filter skips (skip ratio %.3f)\n",
		m.IterTablesOpened, m.IterPrefixSkips, m.IterTableSkipRatio())
	b.WriteString("commit waits:")
	var commits int64
	for i, c := range m.CommitWaitHist {
		commits += c
		if c == 0 {
			continue
		}
		if i < len(engine.CommitWaitBuckets) {
			fmt.Fprintf(&b, "  <=%v %d", engine.CommitWaitBuckets[i], c)
		} else {
			fmt.Fprintf(&b, "  >%v %d", engine.CommitWaitBuckets[len(engine.CommitWaitBuckets)-1], c)
		}
	}
	if commits > 0 {
		fmt.Fprintf(&b, "  (mean %.1fus)", float64(m.CommitWaitNanos)/float64(commits)/1e3)
	}
	b.WriteString("\n")
	if m.BgRetryableErrors+m.BgPermanentErrors+m.BgRetries+m.Resumes > 0 || m.ReadOnly {
		fmt.Fprintf(&b, "background errors: %d retryable, %d permanent, %d retries, %d resumes, read-only %t\n",
			m.BgRetryableErrors, m.BgPermanentErrors, m.BgRetries, m.Resumes, m.ReadOnly)
	}
	fmt.Fprintf(&b, "io: read %s, written %s, write amplification %.2f\n",
		fmtBytes(m.IO.TotalRead()), fmtBytes(m.IO.TotalWritten()), m.WriteAmplification())
	return b.String()
}

// fmtBytes renders n in the most natural binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 10<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 10<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 10<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// Metrics returns current statistics.
func (d *DB) Metrics() Metrics {
	return Metrics{
		Metrics:          d.eng.Metrics(),
		IO:               d.fs.Stats(),
		UserBytesWritten: d.userBytes.Load(),
	}
}
