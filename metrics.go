package pebblesdb

import (
	"pebblesdb/internal/engine"
	"pebblesdb/internal/vfs"
)

// Metrics is a point-in-time summary of store behaviour, including the IO
// accounting behind the paper's write-amplification results.
type Metrics struct {
	engine.Metrics

	// IO is the byte-level filesystem accounting since Open.
	IO vfs.IOStats
	// UserBytesWritten is the total key+value payload the application has
	// written; the denominator of write amplification.
	UserBytesWritten int64
}

// Merge accumulates o into m, yielding the combined metrics of both
// stores — how a sharded server (cmd/dbserver) reports M engines as one
// snapshot. Counters and histograms add; ratio-style numbers
// (WriteAmplification and the engine.Metrics methods) derive from the
// summed counters afterwards, so each shard contributes in proportion to
// its traffic instead of each shard's ratio counting once.
func (m *Metrics) Merge(o Metrics) {
	m.Metrics.Merge(o.Metrics)
	m.IO = m.IO.Add(o.IO)
	m.UserBytesWritten += o.UserBytesWritten
}

// WriteAmplification is total write IO divided by user data written
// (Fig 1.1). Returns 0 before any writes.
func (m Metrics) WriteAmplification() float64 {
	if m.UserBytesWritten == 0 {
		return 0
	}
	return float64(m.IO.TotalWritten()) / float64(m.UserBytesWritten)
}

// Metrics returns current statistics.
func (d *DB) Metrics() Metrics {
	return Metrics{
		Metrics:          d.eng.Metrics(),
		IO:               d.fs.Stats(),
		UserBytesWritten: d.userBytes.Load(),
	}
}
