package pebblesdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pebblesdb/internal/vfs"
)

func testOptions(p Preset) *Options {
	o := p.Options()
	o.WithFS(vfs.NewMem())
	// Small sizes so tests exercise flush and compaction quickly.
	o.MemtableSize = 64 << 10
	o.LevelBaseBytes = 256 << 10
	o.TargetFileSize = 64 << 10
	o.TopLevelBits = 10
	o.BitDecrement = 1
	return o
}

var allPresets = []Preset{PresetPebblesDB, PresetHyperLevelDB, PresetLevelDB, PresetRocksDB, PresetPebblesDB1}

func TestPutGetAllPresets(t *testing.T) {
	for _, p := range allPresets {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, err := Open("db", testOptions(p))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const n = 5000
			rng := rand.New(rand.NewSource(42))
			keys := make([][]byte, n)
			vals := make([][]byte, n)
			for i := 0; i < n; i++ {
				keys[i] = []byte(fmt.Sprintf("key%08d", rng.Intn(1000000)))
				vals[i] = []byte(fmt.Sprintf("value-%d-%d", i, rng.Int63()))
				if err := db.Put(keys[i], vals[i]); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			// Later writes of the same key win; build the expected map.
			want := map[string][]byte{}
			for i := 0; i < n; i++ {
				want[string(keys[i])] = vals[i]
			}
			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}
			for k, v := range want {
				got, ok, err := db.Get([]byte(k), nil)
				if err != nil {
					t.Fatalf("get %q: %v", k, err)
				}
				if !ok {
					t.Fatalf("get %q: missing", k)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("get %q: got %q want %q", k, got, v)
				}
			}
			// Absent key.
			if _, ok, _ := db.Get([]byte("nonexistent"), nil); ok {
				t.Fatal("found nonexistent key")
			}
		})
	}
}

func TestIterateMatchesModel(t *testing.T) {
	for _, p := range []Preset{PresetPebblesDB, PresetHyperLevelDB} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			db, err := Open("db", testOptions(p))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			rng := rand.New(rand.NewSource(7))
			model := map[string]string{}
			for i := 0; i < 8000; i++ {
				k := fmt.Sprintf("k%06d", rng.Intn(3000))
				switch rng.Intn(3) {
				case 0, 1:
					v := fmt.Sprintf("v%d", i)
					model[k] = v
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
				case 2:
					delete(model, k)
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := db.WaitIdle(); err != nil {
				t.Fatal(err)
			}

			it, err := db.NewIter(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			var gotKeys []string
			for it.First(); it.Valid(); it.Next() {
				k := string(it.Key())
				gotKeys = append(gotKeys, k)
				if want, ok := model[k]; !ok {
					t.Fatalf("iterator yielded deleted/absent key %q", k)
				} else if want != string(it.Value()) {
					t.Fatalf("key %q: got %q want %q", k, it.Value(), want)
				}
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			if len(gotKeys) != len(model) {
				t.Fatalf("iterator yielded %d keys, model has %d", len(gotKeys), len(model))
			}
			for i := 1; i < len(gotKeys); i++ {
				if gotKeys[i-1] >= gotKeys[i] {
					t.Fatalf("iterator out of order: %q then %q", gotKeys[i-1], gotKeys[i])
				}
			}
		})
	}
}

func TestReopenRecoversData(t *testing.T) {
	for _, p := range []Preset{PresetPebblesDB, PresetLevelDB} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			fs := vfs.NewMem()
			opts := testOptions(p)
			opts.WithFS(fs)

			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("key%05d", i)
				if err := db.Put([]byte(k), []byte("val"+k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			opts2 := testOptions(p)
			opts2.WithFS(fs)
			db2, err := Open("db", opts2)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("key%05d", i)
				v, ok, err := db2.Get([]byte(k), nil)
				if err != nil || !ok {
					t.Fatalf("get %q after reopen: ok=%v err=%v", k, ok, err)
				}
				if string(v) != "val"+k {
					t.Fatalf("get %q: got %q", k, v)
				}
			}
		})
	}
}
