module pebblesdb

go 1.24
