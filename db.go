// Package pebblesdb is a key-value store built on Fragmented Log-Structured
// Merge trees (FLSM), reproducing "PebblesDB: Building Key-Value Stores
// using Fragmented Log-Structured Merge Trees" (SOSP 2017). FLSM organizes
// each level's sstables under guards — skip-list-inspired partitions of the
// key space — and compacts by fragmenting and appending rather than
// rewriting, which cuts write amplification by 2-3x versus leveled LSMs.
//
// The same package also hosts the leveled-LSM baselines the paper compares
// against (LevelDB, HyperLevelDB and RocksDB presets of the EngineLeveled
// tree) so that every experiment in the paper's evaluation can be
// regenerated; see DESIGN.md and EXPERIMENTS.md.
//
// Basic usage:
//
//	db, err := pebblesdb.Open("demo", pebblesdb.PresetPebblesDB.Options())
//	if err != nil { ... }
//	defer db.Close()
//	_ = db.Put([]byte("key"), []byte("value"))
//	v, ok, _ := db.Get([]byte("key"), nil)
//
// Reads and writes take per-operation options (nil selects the defaults):
// ReadOptions pin a Get to a Snapshot, WriteOptions control per-commit
// durability, and IterOptions bound an iterator and let it scan in either
// direction:
//
//	it, _ := db.NewIter(&pebblesdb.IterOptions{
//		LowerBound: []byte("user:"), UpperBound: []byte("user;"),
//	})
//	for it.Last(); it.Valid(); it.Prev() { ... }
//	_ = it.Close()
//
// DeleteRange removes a whole key range in O(1) writes — one range
// tombstone instead of a tombstone per key — which is the efficient way
// to expire a time window, drop a tenant's keyspace, or truncate a queue:
//
//	_ = db.DeleteRange([]byte("evt/0001/"), []byte("evt/0002/"))
package pebblesdb

import (
	"errors"
	"io"
	"sync/atomic"

	"pebblesdb/internal/batch"
	"pebblesdb/internal/engine"
	"pebblesdb/internal/vfs"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("pebblesdb: database is closed")

// ErrReadOnly marks writes rejected while the store is degraded to
// read-only mode by a background IO error. Match with errors.Is(err,
// ErrReadOnly); errors.Unwrap exposes the original failure. Reads keep
// serving in this state. If the cause was transient (for example the disk
// filled up and was cleared), Resume restores writability; corruption is
// permanent and requires operator intervention.
var ErrReadOnly = engine.ErrReadOnly

// DB is a handle to an open store. All methods are safe for concurrent
// use.
type DB struct {
	eng       *engine.Engine
	fs        *vfs.CountingFS
	userBytes atomic.Int64
	closed    atomic.Bool
}

// Open opens (creating if necessary) the store in dir. A nil opts selects
// PresetPebblesDB with an in-memory filesystem disabled (OS-backed).
func Open(dir string, opts *Options) (*DB, error) {
	if opts == nil {
		opts = PresetPebblesDB.Options()
	}
	cfg, kind, baseFS := opts.toConfig()
	counting := vfs.NewCounting(baseFS)
	eng, err := engine.Open(cfg, counting, dir, kind)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, fs: counting}, nil
}

// Put stores key -> value, replacing any existing value.
func (d *DB) Put(key, value []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.userBytes.Add(int64(len(key) + len(value)))
	return d.eng.Set(key, value, false)
}

// Delete removes key. Deleting an absent key is not an error.
func (d *DB) Delete(key []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.userBytes.Add(int64(len(key)))
	return d.eng.Delete(key, false)
}

// DeleteRange removes every key in [start, end) in O(1) writes: a single
// range tombstone is logged and flushed instead of one tombstone per key,
// so dropping a time window, a tenant's keyspace or a queue prefix costs
// the same regardless of how many keys it covers. The deletion is visible
// to Get, iterators and new snapshots immediately; snapshots taken before
// the call still see the old keys. Deleting an empty or inverted range is
// a no-op.
func (d *DB) DeleteRange(start, end []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.userBytes.Add(int64(len(start) + len(end)))
	return d.eng.DeleteRange(start, end, false)
}

// Get returns the value of key. found is false when the key is absent or
// deleted. A nil opts reads the latest committed state; opts.Snapshot pins
// the read to a point-in-time view. The caller owns the returned slice: it
// is written into opts.Buf when one is supplied with sufficient capacity
// (making a steady-state Get allocation-free), and freshly allocated
// otherwise.
func (d *DB) Get(key []byte, opts *ReadOptions) (value []byte, found bool, err error) {
	var buf []byte
	if opts != nil {
		buf = opts.Buf
	}
	return d.GetTo(key, buf, opts)
}

// GetTo is Get with an explicit destination buffer: the value is appended
// to dst[:0] and returned (dst may be nil). Reusing a buffer with enough
// capacity across calls makes point reads allocation-free — the dbbench
// readrandom loop and other hot read paths use this.
func (d *DB) GetTo(key, dst []byte, opts *ReadOptions) (value []byte, found bool, err error) {
	if d.closed.Load() {
		return nil, false, ErrClosed
	}
	var snap *engine.Snapshot
	if opts != nil && opts.Snapshot != nil {
		snap = opts.Snapshot.s
	}
	return d.eng.Get(key, snap, dst)
}

// GetAt is Get against a snapshot.
//
// Deprecated: use Get(key, &ReadOptions{Snapshot: snap}).
func (d *DB) GetAt(key []byte, snap *Snapshot) (value []byte, found bool, err error) {
	return d.Get(key, &ReadOptions{Snapshot: snap})
}

// Apply atomically commits a batch of writes. A nil opts commits without
// an fsync; opts.Sync makes this commit durable against machine crashes
// before Apply returns. Concurrent Apply calls are group-committed:
// simultaneous batches share one WAL write and — for Sync commits — one
// amortized fsync, so per-commit durability costs far less under
// concurrency than commits × fsync latency. Sync semantics are
// unchanged: when Apply returns, the commit is durable.
func (d *DB) Apply(b *Batch, opts *WriteOptions) error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.userBytes.Add(int64(b.userBytes))
	return d.eng.Apply(b.b, opts != nil && opts.Sync)
}

// ApplySync commits a batch and syncs the WAL before returning.
//
// Deprecated: use Apply(b, pebblesdb.Sync).
func (d *DB) ApplySync(b *Batch) error {
	return d.Apply(b, Sync)
}

// Snapshot pins a point-in-time view of the store.
type Snapshot struct{ s *engine.Snapshot }

// NewSnapshot captures the current state; release it with Close.
func (d *DB) NewSnapshot() *Snapshot { return &Snapshot{s: d.eng.NewSnapshot()} }

// Close releases the snapshot.
func (s *Snapshot) Close() { s.s.Close() }

// Flush persists the current memtable to level 0 and waits for it.
func (d *DB) Flush() error {
	if d.closed.Load() {
		return ErrClosed
	}
	return d.eng.Flush()
}

// ReadOnly reports whether the store is degraded to read-only mode by a
// background error.
func (d *DB) ReadOnly() bool { return d.eng.ReadOnly() }

// Resume clears a transient background error and restores writability: the
// store rotates to a fresh WAL, re-runs the interrupted flush, and resumes
// background compaction. Returns nil when the store was already healthy and
// a wrapped ErrReadOnly when the degradation is permanent (corruption).
// Call after the underlying condition clears — e.g. disk space was freed.
func (d *DB) Resume() error {
	if d.closed.Load() {
		return ErrClosed
	}
	return d.eng.Resume()
}

// CompactAll flushes and drives compaction until the store is quiescent
// (the paper's "fully compacted" read benchmarks).
func (d *DB) CompactAll() error {
	if d.closed.Load() {
		return ErrClosed
	}
	return d.eng.CompactAll()
}

// WaitIdle blocks until background flushes and compactions are drained.
func (d *DB) WaitIdle() error {
	if d.closed.Load() {
		return ErrClosed
	}
	return d.eng.WaitIdle()
}

// Dump writes a human-readable description of the store layout (levels,
// guards, sstables) to w — the view in the paper's Figure 3.1.
func (d *DB) Dump(w io.Writer) { d.eng.Dump(w) }

// RecentEvents returns the store's flight recorder contents: the most
// recent background events (flushes, compactions, rotations, stalls,
// errors), oldest first. The recorder is always on — no EventListener
// needs to be configured — and is automatically dumped through the logger
// when the store degrades to read-only, so the activity leading up to a
// failure is preserved.
func (d *DB) RecentEvents() []Event { return d.eng.RecentEvents() }

// Close shuts the store down, waiting for background work. The WAL
// preserves any unflushed writes for the next Open.
func (d *DB) Close() error {
	if d.closed.Swap(true) {
		return ErrClosed
	}
	return d.eng.Close()
}

// Batch accumulates writes for atomic application via Apply.
type Batch struct {
	b         *batch.Batch
	userBytes int
}

// NewBatch returns an empty batch.
func (d *DB) NewBatch() *Batch { return &Batch{b: batch.New()} }

// Set queues a put of key to value.
func (b *Batch) Set(key, value []byte) {
	b.userBytes += len(key) + len(value)
	b.b.Set(key, value)
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.userBytes += len(key)
	b.b.Delete(key)
}

// DeleteRange queues a range tombstone deleting every key in [start, end).
func (b *Batch) DeleteRange(start, end []byte) {
	b.userBytes += len(start) + len(end)
	b.b.DeleteRange(start, end)
}

// Count returns the number of queued writes.
func (b *Batch) Count() int { return int(b.b.Count()) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.userBytes = 0
	b.b.Reset()
}
