package pebblesdb

import (
	"fmt"
	"testing"

	"pebblesdb/internal/base"
	"pebblesdb/internal/vfs"
)

// TestOptionsTuned pins the Tuned profile's shape: one memory knob scales
// the caches and write buffers, never shrinking a preset that is already
// larger, and opens up the background machinery.
func TestOptionsTuned(t *testing.T) {
	o := PresetPebblesDB.Options().Tuned(1 << 30)
	if o.MemtableSize != 256<<20 {
		t.Errorf("MemtableSize = %d, want 256MiB (target/4)", o.MemtableSize)
	}
	if o.BlockCacheSize != 512<<20 {
		t.Errorf("BlockCacheSize = %d, want 512MiB (target/2)", o.BlockCacheSize)
	}
	if o.TableCacheSize < 1024 {
		t.Errorf("TableCacheSize = %d, want >= 1024", o.TableCacheSize)
	}
	if o.TargetFileSize != 64<<20 {
		t.Errorf("TargetFileSize = %d, want 64MiB cap", o.TargetFileSize)
	}
	if o.L0CompactionTrigger != 4 || o.L0SlowdownTrigger < 12 || o.L0StopTrigger < 20 {
		t.Errorf("L0 triggers = %d/%d/%d, want 4/>=12/>=20",
			o.L0CompactionTrigger, o.L0SlowdownTrigger, o.L0StopTrigger)
	}
	if o.MaxCompactionConcurrency < 4 {
		t.Errorf("MaxCompactionConcurrency = %d, want >= 4", o.MaxCompactionConcurrency)
	}

	// The memtable quarter is capped so flushes stay incremental.
	big := PresetPebblesDB.Options().Tuned(64 << 30)
	if big.MemtableSize != 256<<20 {
		t.Errorf("MemtableSize at 64GiB target = %d, want 256MiB cap", big.MemtableSize)
	}

	// A tiny target never shrinks the preset's own sizes.
	small := PresetRocksDB.Options()
	wantMem, wantCache := small.MemtableSize, small.BlockCacheSize
	small.Tuned(1 << 20)
	if small.MemtableSize < wantMem || small.BlockCacheSize < wantCache {
		t.Errorf("Tuned shrank the preset: memtable %d->%d cache %d->%d",
			wantMem, small.MemtableSize, wantCache, small.BlockCacheSize)
	}

	// Zero and negative targets are no-ops.
	def := PresetPebblesDB.Options()
	want := *PresetPebblesDB.Options()
	def.Tuned(0)
	if def.MemtableSize != want.MemtableSize || def.BlockCacheSize != want.BlockCacheSize {
		t.Error("Tuned(0) changed the options")
	}
}

// TestMetricsMergeAggregation exercises the cross-shard Metrics merge the
// server's Stats RPC relies on: counters sum, and derived ratios come out
// operation-weighted — not double-counted, not a mean of per-shard ratios.
func TestMetricsMergeAggregation(t *testing.T) {
	shards := make([]*DB, 3)
	for i := range shards {
		o := PresetPebblesDB.Options()
		o.MemtableSize = 256 << 10
		o.WithFS(vfs.NewMem())
		db, err := Open(fmt.Sprintf("m%d", i), o)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		shards[i] = db
	}
	// Uneven load: shard i gets (i+1)*100 writes and (i+1)*50 reads.
	var wantGets int64
	for i, db := range shards {
		for k := 0; k < (i+1)*100; k++ {
			if err := db.Put([]byte(fmt.Sprintf("s%d-%05d", i, k)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < (i+1)*50; k++ {
			if _, _, err := db.Get([]byte(fmt.Sprintf("s%d-%05d", i, k)), nil); err != nil {
				t.Fatal(err)
			}
			wantGets++
		}
	}

	var agg Metrics
	var wantBatches, wantHist int64
	var maxSeq base.SeqNum
	for i, db := range shards {
		m := db.Metrics()
		wantBatches += m.CommitBatches
		for _, c := range m.CommitWaitHist {
			wantHist += c
		}
		if m.LastSeq > maxSeq {
			maxSeq = m.LastSeq
		}
		if i == 0 {
			agg = m
		} else {
			agg.Merge(m)
		}
	}
	if agg.Gets != wantGets {
		t.Errorf("merged Gets = %d, want %d", agg.Gets, wantGets)
	}
	if agg.CommitBatches != wantBatches {
		t.Errorf("merged CommitBatches = %d, want %d", agg.CommitBatches, wantBatches)
	}
	var gotHist int64
	for _, c := range agg.CommitWaitHist {
		gotHist += c
	}
	if gotHist != wantHist {
		t.Errorf("merged CommitWaitHist total = %d, want %d (histograms must merge bucket-wise, once)", gotHist, wantHist)
	}
	if agg.LastSeq != maxSeq {
		t.Errorf("merged LastSeq = %d, want max %d", agg.LastSeq, maxSeq)
	}
	// Merging a zero Metrics must not disturb derived ratios.
	before := agg.WriteAmplification()
	agg.Merge(Metrics{})
	if agg.WriteAmplification() != before {
		t.Error("merging zero metrics changed write amplification")
	}
}
